package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// systestBinary compiles the command once per test binary via the go
// tool (`go build`, the compile step `go run .` performs) and returns the
// path. Running the artifact directly — rather than through `go run` —
// preserves the CLI's real exit codes, which `go run` collapses to 1.
var systestBinary = struct {
	once sync.Once
	path string
	err  error
}{}

func buildSystest(t *testing.T) string {
	t.Helper()
	b := &systestBinary
	b.once.Do(func() {
		dir, err := os.MkdirTemp("", "systest-cli")
		if err != nil {
			b.err = err
			return
		}
		b.path = filepath.Join(dir, "systest")
		out, err := exec.Command("go", "build", "-o", b.path, ".").CombinedOutput()
		if err != nil {
			b.err = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if b.err != nil {
		t.Fatal(b.err)
	}
	return b.path
}

// runSystest invokes the compiled CLI and returns combined output plus
// the exit code.
func runSystest(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(buildSystest(t), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("systest failed to start: %v\n%s", err, out)
	return "", -1
}

// TestCLISmoke drives the binary end to end: list scenarios, find a bug
// with a portfolio, write its trace, and replay it.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	out, code := runSystest(t, "-list")
	if code != 0 || !strings.Contains(out, "replsys") {
		t.Fatalf("-list failed (exit %d):\n%s", code, out)
	}

	trace := filepath.Join(t.TempDir(), "bug.trace")
	out, code = runSystest(t,
		"-test", "replsys-safety", "-portfolio", "random,pct,delay",
		"-seed", "1", "-iterations", "5000", "-workers", "4", "-trace-out", trace)
	if code != 1 {
		t.Fatalf("portfolio run exit = %d, want 1 (bug found):\n%s", code, out)
	}
	if !strings.Contains(out, "bug found by the") || !strings.Contains(out, "* member") {
		t.Fatalf("portfolio output lacks winner attribution:\n%s", out)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not written: %v\n%s", err, out)
	}

	out, code = runSystest(t, "-test", "replsys-safety", "-replay", trace)
	if code != 0 || !strings.Contains(out, "replay reproduced:") {
		t.Fatalf("replay failed (exit %d):\n%s", code, out)
	}
}

// TestCLIFaultPlaneRoundTrip drives a fault-budgeted scenario end to end:
// the banner reports the scenario's declared crash budget, the buggy
// trace (which contains the new fault decision kinds) is written to disk,
// and -replay reproduces the violation from the file.
func TestCLIFaultPlaneRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	trace := filepath.Join(t.TempDir(), "fault.trace")
	out, code := runSystest(t,
		"-test", "ExtentNodeLivenessViolation",
		"-seed", "1", "-iterations", "2000", "-trace-out", trace)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (bug found):\n%s", code, out)
	}
	if !strings.Contains(out, "faults crashes=1") {
		t.Fatalf("banner does not report the scenario's crash budget:\n%s", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(data), `"version": 2`) {
		t.Fatalf("trace is not version 2:\n%.300s", data)
	}
	if !strings.Contains(string(data), `"k": "c"`) || !strings.Contains(string(data), `"k": "t"`) {
		t.Fatalf("trace lacks crash/timer decision kinds:\n%.300s", data)
	}
	out, code = runSystest(t, "-test", "ExtentNodeLivenessViolation", "-replay", trace)
	if code != 0 || !strings.Contains(out, "replay reproduced:") {
		t.Fatalf("fault-plane replay failed (exit %d):\n%s", code, out)
	}

	// An explicit override is visible in the banner too.
	out, code = runSystest(t,
		"-test", "vnext-repair", "-faults", "crashes=1,drops=2,dups=1",
		"-iterations", "5", "-seed", "3")
	if code != 0 {
		t.Fatalf("override run exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "faults crashes=1 drops=2 dups=1") {
		t.Fatalf("banner does not report the override:\n%s", out)
	}

	// -max-crashes alone adjusts only the crashes component, keeping the
	// lossy scenario's declared drop/duplicate allowances.
	out, code = runSystest(t,
		"-test", "vnext-repair-lossy", "-max-crashes", "2",
		"-iterations", "5", "-seed", "3")
	if code != 0 {
		t.Fatalf("max-crashes run exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "faults crashes=2 drops=3 dups=2") {
		t.Fatalf("-max-crashes did not merge into the scenario budget:\n%s", out)
	}

	// -max-torn-crashes merges the same way: only the torn component of
	// the scenario's declared budget changes.
	out, code = runSystest(t,
		"-test", "vnext-repair-lossy", "-max-torn-crashes", "1",
		"-iterations", "5", "-seed", "3")
	if code != 0 {
		t.Fatalf("max-torn-crashes run exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "faults crashes=1 drops=3 dups=2 torn=1") {
		t.Fatalf("-max-torn-crashes did not merge into the scenario budget:\n%s", out)
	}

	// An explicit all-zero budget disables the scenario's declared
	// faults: the liveness scenario cannot fail without its crash, and
	// the banner reports the disabled plane.
	out, code = runSystest(t,
		"-test", "ExtentNodeLivenessViolation", "-faults", "crashes=0",
		"-iterations", "50", "-seed", "1")
	if code != 0 {
		t.Fatalf("disabled-faults run exit = %d, want 0 (no crash, no bug):\n%s", code, out)
	}
	if !strings.Contains(out, "faults -") {
		t.Fatalf("banner does not report the disabled fault plane:\n%s", out)
	}
}

// TestCLIValidatesFlagsUpFront pins the fix for deferred validation: bad
// flags fail immediately with a pointed message and exit code 2, never as
// an engine panic mid-run.
// TestCLIProfileFlags runs a short exploration with both profiling flags
// and checks the profile files materialize non-empty; a bad profile path
// must fail up front like any other flag error.
func TestCLIProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out, code := runSystest(t,
		"-test", "replsys-safety", "-scheduler", "random",
		"-seed", "1", "-iterations", "200", "-workers", "1",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 && code != 1 {
		t.Fatalf("profiled run exit = %d, want 0 or 1:\n%s", code, out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v\n%s", err, out)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty\n%s", p, out)
		}
	}

	out, code = runSystest(t,
		"-test", "replsys-safety", "-iterations", "1",
		"-cpuprofile", filepath.Join(dir, "no/such/dir/cpu.pprof"))
	if code != 2 || !strings.Contains(out, "-cpuprofile") {
		t.Fatalf("bad -cpuprofile path: exit = %d, want 2 with flag error:\n%s", code, out)
	}
}

func TestCLIValidatesFlagsUpFront(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative pct-depth", []string{"-test", "replsys", "-pct-depth", "-1"}, "-pct-depth must be positive"},
		{"unknown scheduler", []string{"-test", "replsys", "-scheduler", "quantum"}, "unknown scheduler"},
		{"unknown portfolio member", []string{"-test", "replsys", "-portfolio", "random,quantum"}, "unknown scheduler"},
		{"empty portfolio member", []string{"-test", "replsys", "-portfolio", "random,,pct"}, "empty member"},
		{"portfolio without members", []string{"-test", "replsys", "-scheduler", "portfolio"}, "needs -portfolio"},
		{"portfolio vs scheduler conflict", []string{"-test", "replsys", "-scheduler", "dfs", "-portfolio", "random"}, "conflicts"},
		{"explicit default scheduler still conflicts", []string{"-test", "replsys", "-scheduler", "random", "-portfolio", "pct,delay"}, "conflicts"},
		{"missing test", []string{"-scheduler", "random"}, "-test is required"},
		{"unknown scenario", []string{"-test", "nope"}, "unknown scenario"},
		{"bad faults key", []string{"-test", "replsys", "-faults", "bogus=1"}, "unknown key"},
		{"bad faults value", []string{"-test", "replsys", "-faults", "crashes=x"}, "non-negative integer"},
		{"negative max-crashes", []string{"-test", "replsys", "-max-crashes", "-3"}, "-max-crashes must be non-negative"},
		{"negative max-torn-crashes", []string{"-test", "replsys", "-max-torn-crashes", "-1"}, "-max-torn-crashes must be non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, code := runSystest(t, c.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2:\n%s", code, out)
			}
			if !strings.Contains(out, c.want) {
				t.Fatalf("error output lacks %q:\n%s", c.want, out)
			}
		})
	}
}

// TestCLIShard drives -shard end to end: the shard owning the winning
// position must report the identical trace a full run reports, and that
// trace must replay bit-identically in a fresh process.
func TestCLIShard(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	full := filepath.Join(t.TempDir(), "full.trace")
	out, code := runSystest(t,
		"-test", "wal-torn-tail", "-scheduler", "random",
		"-seed", "1", "-iterations", "400", "-trace-out", full)
	if code != 1 {
		t.Fatalf("full run exit = %d, want 1:\n%s", code, out)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// The union of the shards reproduces the winner: the first shard (in
	// position order) that reports a bug holds the lowest global position,
	// and its trace must be byte-identical to the full run's.
	const n = 4
	winner := ""
	for i := 0; i < n; i++ {
		trace := filepath.Join(t.TempDir(), fmt.Sprintf("shard%d.trace", i))
		out, code := runSystest(t,
			"-test", "wal-torn-tail", "-scheduler", "random",
			"-seed", "1", "-iterations", "400",
			"-shard", fmt.Sprintf("%d/%d", i, n), "-trace-out", trace)
		if !strings.Contains(out, fmt.Sprintf("shard %d/%d", i, n)) {
			t.Fatalf("banner does not name the shard:\n%s", out)
		}
		switch code {
		case 0:
			continue
		case 1:
			if winner == "" {
				winner = trace
			}
		default:
			t.Fatalf("shard %d/%d exit = %d:\n%s", i, n, code, out)
		}
	}
	if winner == "" {
		t.Fatal("no shard found the bug the full run found")
	}
	got, err := os.ReadFile(winner)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("winning shard trace diverges from the full run:\n got %s\nwant %s", got, want)
	}

	// Fresh-process replay of the shard's trace reproduces the violation.
	out, code = runSystest(t, "-test", "wal-torn-tail", "-replay", winner)
	if code != 0 || !strings.Contains(out, "replay reproduced:") {
		t.Fatalf("replay failed (exit %d):\n%s", code, out)
	}
}

// TestCLIShardFlagValidation: the -shard pair fails fast on malformed
// specs, out-of-range indices, and conflicting modes.
func TestCLIShardFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-test", "wal-torn-tail", "-shard", "banana"}, "-shard must be i/n"},
		{[]string{"-test", "wal-torn-tail", "-shard", "3/3"}, "shard index must be in [0, 3)"},
		{[]string{"-test", "wal-torn-tail", "-shard", "-1/3"}, "shard index must be in [0, 3)"},
		{[]string{"-test", "wal-torn-tail", "-shard", "0/0"}, "shard count must be positive"},
		{[]string{"-test", "wal-torn-tail", "-shard", "0/2", "-replay", "x.trace"}, "conflicts with -replay"},
		{[]string{"-test", "wal-torn-tail", "-shard", "0/2", "-scheduler", "dfs"}, "cannot explore a sub-range"},
	} {
		out, code := runSystest(t, tc.args...)
		if code != 2 {
			t.Fatalf("%v exit = %d, want 2:\n%s", tc.args, code, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v output %q does not mention %q", tc.args, out, tc.want)
		}
	}
}
