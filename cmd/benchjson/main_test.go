package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: github.com/gostorm/gostorm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRuntimeSteps 	     100	   1203456 ns/op	       120.5 ns/step	   47589 B/op	     425 allocs/op
BenchmarkExecutionReuse/pingpong/workers=1/pooled 	      30	  20757478 ns/op	      3083 execs/s	   47589 B/op	     425 allocs/op
BenchmarkExecutionReuse/pingpong/workers=1/noreuse 	      30	  20200698 ns/op	      3168 execs/s	 2205795 B/op	    2228 allocs/op
PASS
ok  	github.com/gostorm/gostorm	1.485s
`

func TestParseAndCompare(t *testing.T) {
	benches, err := parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	if b := benches[0]; b.Name != "BenchmarkRuntimeSteps" || b.Iterations != 100 ||
		b.NsPerOp != 1203456 || b.NsPerStep != 120.5 || b.AllocsPerOp != 425 {
		t.Fatalf("first benchmark parsed wrong: %+v", b)
	}

	cmp := compareReuse(benches)
	if len(cmp) != 1 {
		t.Fatalf("derived %d reuse comparisons, want 1", len(cmp))
	}
	c := cmp[0]
	if c.Workload != "pingpong" || c.Workers != "1" {
		t.Fatalf("comparison key wrong: %+v", c)
	}
	if c.AllocsPerOpReductionPct < 80 || c.AllocsPerOpReductionPct > 81 {
		t.Fatalf("allocs reduction = %.2f%%, want ~80.9%%", c.AllocsPerOpReductionPct)
	}
	if c.ExecsPerSecGainPct > 0 {
		t.Fatalf("execs gain should be negative in this sample, got %.2f%%", c.ExecsPerSecGainPct)
	}
}

func TestParseIgnoresUnknownUnits(t *testing.T) {
	benches, err := parse("BenchmarkX 	 10	 5 ns/op	 3 widgets/op\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].NsPerOp != 5 {
		t.Fatalf("parse with unknown unit: %+v", benches)
	}
}
