package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: github.com/gostorm/gostorm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRuntimeSteps 	     100	   1203456 ns/op	       120.5 ns/step	      332.3 execs/s	   47589 B/op	     425 allocs/op
BenchmarkExecutionReuse/pingpong/workers=1/pooled 	      30	  20757478 ns/op	      3083 execs/s	   47589 B/op	     425 allocs/op
BenchmarkExecutionReuse/pingpong/workers=1/noreuse 	      30	  20200698 ns/op	      3168 execs/s	 2205795 B/op	    2228 allocs/op
PASS
ok  	github.com/gostorm/gostorm	1.485s
`

func TestParseAndCompare(t *testing.T) {
	benches, err := parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	if b := benches[0]; b.Name != "BenchmarkRuntimeSteps" || b.Iterations != 100 ||
		b.NsPerOp != 1203456 || b.NsPerStep != 120.5 || b.ExecsPerSec != 332.3 || b.AllocsPerOp != 425 {
		t.Fatalf("first benchmark parsed wrong: %+v", b)
	}

	cmp := compareReuse(benches)
	if len(cmp) != 1 {
		t.Fatalf("derived %d reuse comparisons, want 1", len(cmp))
	}
	c := cmp[0]
	if c.Workload != "pingpong" || c.Workers != "1" {
		t.Fatalf("comparison key wrong: %+v", c)
	}
	if c.AllocsPerOpReductionPct < 80 || c.AllocsPerOpReductionPct > 81 {
		t.Fatalf("allocs reduction = %.2f%%, want ~80.9%%", c.AllocsPerOpReductionPct)
	}
	if c.ExecsPerSecGainPct > 0 {
		t.Fatalf("execs gain should be negative in this sample, got %.2f%%", c.ExecsPerSecGainPct)
	}
}

// TestParseStripsAnyGOMAXPROCSSuffix: the -P suffix must be stripped by
// pattern, whatever P the benchmarked subprocess ran under — the CI smoke
// runs the suite at GOMAXPROCS values that differ from benchjson's own.
func TestParseStripsAnyGOMAXPROCSSuffix(t *testing.T) {
	out := "BenchmarkRuntimeSteps-2 	 10	 5 ns/op\n" +
		"BenchmarkExecutionReuse/pingpong/workers=4/pooled-128 	 10	 5 ns/op	 100 execs/s\n"
	benches, err := parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	if benches[0].Name != "BenchmarkRuntimeSteps" {
		t.Fatalf("suffix not stripped: %q", benches[0].Name)
	}
	if benches[1].Name != "BenchmarkExecutionReuse/pingpong/workers=4/pooled" {
		t.Fatalf("suffix not stripped from sub-benchmark: %q", benches[1].Name)
	}
	// The stripped sub-benchmark must still key into the derivations.
	if cell, ok := parseReuseCell(benches[1].Name); !ok || cell.workers != 4 || cell.mode != "pooled" {
		t.Fatalf("stripped name does not parse as a reuse cell: %+v ok=%v", cell, ok)
	}
}

// TestParseKeepsUnknownUnits: custom ReportMetric units the parser has no
// field for land in Metrics instead of being dropped.
func TestParseKeepsUnknownUnits(t *testing.T) {
	benches, err := parse("BenchmarkX 	 10	 5 ns/op	 3 widgets/op	 7.5 execs-to-bug\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].NsPerOp != 5 {
		t.Fatalf("parse with unknown unit: %+v", benches)
	}
	if benches[0].Metrics["widgets/op"] != 3 || benches[0].Metrics["execs-to-bug"] != 7.5 {
		t.Fatalf("unknown units not kept: %+v", benches[0].Metrics)
	}
}

// scalingSample is a full 1/2/4/8 matrix with clean round numbers: the
// pooled pingpong curve scales at exactly 100/90/75/50 percent
// efficiency, mtable has no workers=1 point (simulating a filtered -bench
// run) and must survive with raw rates only.
var scalingSample = []Benchmark{
	{Name: "BenchmarkExecutionReuse/pingpong/workers=1/pooled", ExecsPerSec: 1000},
	{Name: "BenchmarkExecutionReuse/pingpong/workers=2/pooled", ExecsPerSec: 1800},
	{Name: "BenchmarkExecutionReuse/pingpong/workers=4/pooled", ExecsPerSec: 3000},
	{Name: "BenchmarkExecutionReuse/pingpong/workers=8/pooled", ExecsPerSec: 4000},
	{Name: "BenchmarkExecutionReuse/pingpong/workers=1/noreuse", ExecsPerSec: 500},
	{Name: "BenchmarkExecutionReuse/pingpong/workers=2/noreuse", ExecsPerSec: 800},
	{Name: "BenchmarkExecutionReuse/mtable/workers=2/pooled", ExecsPerSec: 120},
	{Name: "BenchmarkRuntimeSteps", NsPerStep: 300},
}

func TestDeriveScaling(t *testing.T) {
	curves := deriveScaling(scalingSample)
	if len(curves) != 3 {
		t.Fatalf("derived %d curves, want 3 (pingpong/pooled, pingpong/noreuse, mtable/pooled): %+v", len(curves), curves)
	}
	pp := curves[0]
	if pp.Workload != "pingpong" || pp.Mode != "pooled" || len(pp.Points) != 4 {
		t.Fatalf("first curve wrong: %+v", pp)
	}
	wantEff := map[int]float64{1: 100, 2: 90, 4: 75, 8: 50}
	wantSpeed := map[int]float64{1: 1, 2: 1.8, 4: 3, 8: 4}
	for _, p := range pp.Points {
		if p.EfficiencyPct != wantEff[p.Workers] {
			t.Errorf("workers=%d efficiency = %.1f%%, want %.1f%%", p.Workers, p.EfficiencyPct, wantEff[p.Workers])
		}
		if p.Speedup != wantSpeed[p.Workers] {
			t.Errorf("workers=%d speedup = %.2f, want %.2f", p.Workers, p.Speedup, wantSpeed[p.Workers])
		}
	}
	nr := curves[1]
	if nr.Mode != "noreuse" || len(nr.Points) != 2 {
		t.Fatalf("second curve wrong: %+v", nr)
	}
	if nr.Points[1].EfficiencyPct != 80 {
		t.Errorf("noreuse workers=2 efficiency = %.1f%%, want 80%%", nr.Points[1].EfficiencyPct)
	}
	// mtable has no 1-worker baseline: raw rate kept, derived fields zero.
	mt := curves[2]
	if mt.Workload != "mtable" || len(mt.Points) != 1 {
		t.Fatalf("third curve wrong: %+v", mt)
	}
	if mt.Points[0].ExecsPerSec != 120 || mt.Points[0].Speedup != 0 || mt.Points[0].EfficiencyPct != 0 {
		t.Errorf("baseline-less curve should keep raw rate with zero derivations: %+v", mt.Points[0])
	}
}

func TestDeriveHeadlines(t *testing.T) {
	heads := deriveHeadlines(scalingSample)
	if len(heads) != 2 {
		t.Fatalf("derived %d headlines, want 2: %+v", len(heads), heads)
	}
	pp := heads[0]
	if pp.Workload != "pingpong" || pp.ExecsPerSec != 1000 || pp.BestExecsPerSec != 4000 || pp.BestWorkers != 8 {
		t.Fatalf("pingpong headline wrong: %+v", pp)
	}
	mt := heads[1]
	if mt.Workload != "mtable" || mt.ExecsPerSec != 0 || mt.BestExecsPerSec != 120 || mt.BestWorkers != 2 {
		t.Fatalf("mtable headline wrong: %+v", mt)
	}
}
