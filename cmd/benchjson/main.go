// Command benchjson runs the repository's benchmark suite (`go test
// -bench`) and writes a machine-readable JSON snapshot of the results —
// execs/sec, ns/op, bytes/op and allocs/op per benchmark — so the perf
// trajectory can be committed alongside the code (BENCH_pr4.json, ...).
//
// Beyond the flat per-benchmark list, the snapshot derives a
// pooled-vs-NoReuse comparison from the BenchmarkExecutionReuse sub-runs:
// for every workload/worker-count pair it reports the pooled engine's
// execs/sec gain and allocs/op reduction over fresh-per-execution
// runtimes, the numbers the pooling acceptance criteria are stated in.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_pr4.json -benchtime 30x
//	go run ./cmd/benchjson -bench ExecutionReuse -benchtime 5x -out /tmp/smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	ExecsPerSec float64 `json:"execs_per_sec,omitempty"`
	NsPerStep   float64 `json:"ns_per_step,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// ReuseComparison is one pooled-vs-NoReuse pair derived from
// BenchmarkExecutionReuse/<workload>/workers=<n>/{pooled,noreuse}.
type ReuseComparison struct {
	Workload string     `json:"workload"`
	Workers  string     `json:"workers"`
	Pooled   *Benchmark `json:"pooled"`
	NoReuse  *Benchmark `json:"noreuse"`
	// ExecsPerSecGainPct is 100*(pooled/noreuse - 1) on execs/sec.
	ExecsPerSecGainPct float64 `json:"execs_per_sec_gain_pct"`
	// AllocsPerOpReductionPct is 100*(1 - pooled/noreuse) on allocs/op.
	AllocsPerOpReductionPct float64 `json:"allocs_per_op_reduction_pct"`
}

// Snapshot is the file layout of BENCH_*.json.
type Snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	BenchTime  string            `json:"benchtime"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Reuse      []ReuseComparison `json:"execution_reuse,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output file for the JSON snapshot")
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "10x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n", err)
		os.Exit(1)
	}
	benches, err := parse(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark results in go test output\n")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		BenchTime:  *benchtime,
		Benchmarks: benches,
		Reuse:      compareReuse(benches),
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding snapshot: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks (%d reuse comparisons) to %s\n",
		len(snap.Benchmarks), len(snap.Reuse), *out)
}

// parse extracts benchmark lines from `go test -bench` output. A line is
//
//	BenchmarkName[/sub...][-P]  N  V ns/op  [V unit]...
//
// Unknown units are ignored so future ReportMetric additions don't break
// the snapshot format.
func parse(out string) ([]Benchmark, error) {
	var benches []Benchmark
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		b := Benchmark{Name: strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0)))}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing iteration count in %q: %v", line, err)
		}
		b.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing metric value in %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "execs/s":
				b.ExecsPerSec = v
			case "ns/step":
				b.NsPerStep = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		benches = append(benches, b)
	}
	return benches, nil
}

// compareReuse pairs up the pooled/noreuse sub-benchmarks of
// BenchmarkExecutionReuse and derives the acceptance metrics.
func compareReuse(benches []Benchmark) []ReuseComparison {
	const prefix = "BenchmarkExecutionReuse/"
	type key struct{ workload, workers string }
	pairs := map[key]*ReuseComparison{}
	var order []key
	for i := range benches {
		b := &benches[i]
		if !strings.HasPrefix(b.Name, prefix) {
			continue
		}
		parts := strings.Split(strings.TrimPrefix(b.Name, prefix), "/")
		if len(parts) != 3 {
			continue
		}
		k := key{parts[0], strings.TrimPrefix(parts[1], "workers=")}
		c := pairs[k]
		if c == nil {
			c = &ReuseComparison{Workload: k.workload, Workers: k.workers}
			pairs[k] = c
			order = append(order, k)
		}
		switch parts[2] {
		case "pooled":
			c.Pooled = b
		case "noreuse":
			c.NoReuse = b
		}
	}
	var out []ReuseComparison
	for _, k := range order {
		c := pairs[k]
		if c.Pooled == nil || c.NoReuse == nil {
			continue
		}
		if c.NoReuse.ExecsPerSec > 0 {
			c.ExecsPerSecGainPct = 100 * (c.Pooled.ExecsPerSec/c.NoReuse.ExecsPerSec - 1)
		}
		if c.NoReuse.AllocsPerOp > 0 {
			c.AllocsPerOpReductionPct = 100 * (1 - c.Pooled.AllocsPerOp/c.NoReuse.AllocsPerOp)
		}
		out = append(out, *c)
	}
	return out
}
