// Command benchjson runs the repository's benchmark suite (`go test
// -bench`) and writes a machine-readable JSON snapshot of the results —
// execs/sec, ns/op, ns/step, bytes/op and allocs/op per benchmark — so
// the perf trajectory can be committed alongside the code
// (BENCH_pr4.json, BENCH_pr6.json, ...).
//
// Beyond the flat per-benchmark list, the snapshot derives three views
// from the BenchmarkExecutionReuse worker-scaling matrix
// (<workload>/workers=<n>/{pooled,noreuse}):
//
//   - execution_reuse: the pooled engine's execs/sec gain and allocs/op
//     reduction over fresh-per-execution runtimes, per cell;
//   - worker_scaling: per workload and mode, speedup and scaling
//     efficiency (execs/sec at N workers relative to N× the 1-worker
//     rate) across the worker sweep;
//   - headlines: the per-harness sustained executions/sec — the product
//     metric — at 1 worker and at the best-scaling worker count.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_pr6.json -benchtime 30x
//	go run ./cmd/benchjson -bench ExecutionReuse -benchtime 5x -out /tmp/smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	ExecsPerSec float64 `json:"execs_per_sec,omitempty"`
	NsPerStep   float64 `json:"ns_per_step,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any further b.ReportMetric units the parser has no
	// dedicated field for, so custom metrics survive the snapshot instead
	// of being dropped.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ReuseComparison is one pooled-vs-NoReuse pair derived from
// BenchmarkExecutionReuse/<workload>/workers=<n>/{pooled,noreuse}.
type ReuseComparison struct {
	Workload string     `json:"workload"`
	Workers  string     `json:"workers"`
	Pooled   *Benchmark `json:"pooled"`
	NoReuse  *Benchmark `json:"noreuse"`
	// ExecsPerSecGainPct is 100*(pooled/noreuse - 1) on execs/sec.
	ExecsPerSecGainPct float64 `json:"execs_per_sec_gain_pct"`
	// AllocsPerOpReductionPct is 100*(1 - pooled/noreuse) on allocs/op.
	AllocsPerOpReductionPct float64 `json:"allocs_per_op_reduction_pct"`
}

// ScalingPoint is one worker count of a workload/mode scaling curve.
type ScalingPoint struct {
	Workers     int     `json:"workers"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Speedup is execs/sec relative to the 1-worker rate of the same
	// workload/mode; EfficiencyPct divides it by the worker count
	// (100 = perfect linear scaling).
	Speedup       float64 `json:"speedup"`
	EfficiencyPct float64 `json:"efficiency_pct"`
}

// WorkloadScaling is the scaling curve of one workload/mode pair of the
// BenchmarkExecutionReuse matrix.
type WorkloadScaling struct {
	Workload string         `json:"workload"`
	Mode     string         `json:"mode"`
	Points   []ScalingPoint `json:"points"`
}

// Headline is the per-harness executions/sec summary, taken from the
// pooled (default-configuration) side of the matrix.
type Headline struct {
	Workload    string  `json:"workload"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Best is the highest rate across the worker sweep and the worker
	// count that achieved it.
	BestExecsPerSec float64 `json:"best_execs_per_sec"`
	BestWorkers     int     `json:"best_workers"`
}

// Snapshot is the file layout of BENCH_*.json.
type Snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	BenchTime  string            `json:"benchtime"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Reuse      []ReuseComparison `json:"execution_reuse,omitempty"`
	Scaling    []WorkloadScaling `json:"worker_scaling,omitempty"`
	Headlines  []Headline        `json:"headlines,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output file for the JSON snapshot")
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "10x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n", err)
		os.Exit(1)
	}
	benches, err := parse(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark results in go test output\n")
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		BenchTime:  *benchtime,
		Benchmarks: benches,
		Reuse:      compareReuse(benches),
		Scaling:    deriveScaling(benches),
		Headlines:  deriveHeadlines(benches),
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding snapshot: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks (%d reuse comparisons, %d scaling curves) to %s\n",
		len(snap.Benchmarks), len(snap.Reuse), len(snap.Scaling), *out)
}

// gomaxprocsSuffix matches the "-P" suffix `go test` appends to every
// benchmark name. It is stripped by pattern, not by the GOMAXPROCS of the
// benchjson process: the benchmarked subprocess may run under a different
// GOMAXPROCS (the CI smoke runs the suite at 1 and 2), and stripping the
// wrong number used to leave the suffix glued to the name, breaking the
// sub-benchmark keys every derivation below depends on.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark lines from `go test -bench` output. A line is
//
//	BenchmarkName[/sub...][-P]  N  V ns/op  [V unit]...
//
// Units without a dedicated field land in Metrics, so future ReportMetric
// additions extend the snapshot instead of breaking it.
func parse(out string) ([]Benchmark, error) {
	var benches []Benchmark
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		b := Benchmark{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], "")}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing iteration count in %q: %v", line, err)
		}
		b.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing metric value in %q: %v", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "execs/s":
				b.ExecsPerSec = v
			case "ns/step":
				b.NsPerStep = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		benches = append(benches, b)
	}
	return benches, nil
}

// reuseCell is one parsed BenchmarkExecutionReuse sub-benchmark name.
type reuseCell struct {
	workload string
	workers  int
	mode     string
}

// parseReuseCell splits BenchmarkExecutionReuse/<wl>/workers=<n>/<mode>.
func parseReuseCell(name string) (reuseCell, bool) {
	const prefix = "BenchmarkExecutionReuse/"
	if !strings.HasPrefix(name, prefix) {
		return reuseCell{}, false
	}
	parts := strings.Split(strings.TrimPrefix(name, prefix), "/")
	if len(parts) != 3 {
		return reuseCell{}, false
	}
	w, err := strconv.Atoi(strings.TrimPrefix(parts[1], "workers="))
	if err != nil {
		return reuseCell{}, false
	}
	return reuseCell{workload: parts[0], workers: w, mode: parts[2]}, true
}

// deriveScaling builds the per-workload/mode scaling curves from the
// BenchmarkExecutionReuse matrix. Efficiency is execs/sec at N workers
// over N times the 1-worker rate; curves without a 1-worker point carry
// raw rates with zero speedup/efficiency rather than being dropped.
func deriveScaling(benches []Benchmark) []WorkloadScaling {
	type key struct{ workload, mode string }
	curves := map[key]*WorkloadScaling{}
	var order []key
	for i := range benches {
		c, ok := parseReuseCell(benches[i].Name)
		if !ok {
			continue
		}
		k := key{c.workload, c.mode}
		s := curves[k]
		if s == nil {
			s = &WorkloadScaling{Workload: c.workload, Mode: c.mode}
			curves[k] = s
			order = append(order, k)
		}
		s.Points = append(s.Points, ScalingPoint{
			Workers:     c.workers,
			ExecsPerSec: benches[i].ExecsPerSec,
		})
	}
	var out []WorkloadScaling
	for _, k := range order {
		s := curves[k]
		base := 0.0
		for _, p := range s.Points {
			if p.Workers == 1 {
				base = p.ExecsPerSec
			}
		}
		if base > 0 {
			for i := range s.Points {
				p := &s.Points[i]
				p.Speedup = p.ExecsPerSec / base
				p.EfficiencyPct = 100 * p.Speedup / float64(p.Workers)
			}
		}
		out = append(out, *s)
	}
	return out
}

// deriveHeadlines reduces the pooled side of the matrix to one
// executions/sec line per harness: the 1-worker sustained rate and the
// best rate across the sweep.
func deriveHeadlines(benches []Benchmark) []Headline {
	heads := map[string]*Headline{}
	var order []string
	for i := range benches {
		c, ok := parseReuseCell(benches[i].Name)
		if !ok || c.mode != "pooled" {
			continue
		}
		h := heads[c.workload]
		if h == nil {
			h = &Headline{Workload: c.workload}
			heads[c.workload] = h
			order = append(order, c.workload)
		}
		rate := benches[i].ExecsPerSec
		if c.workers == 1 {
			h.ExecsPerSec = rate
		}
		if rate > h.BestExecsPerSec {
			h.BestExecsPerSec = rate
			h.BestWorkers = c.workers
		}
	}
	var out []Headline
	for _, w := range order {
		out = append(out, *heads[w])
	}
	return out
}

// compareReuse pairs up the pooled/noreuse sub-benchmarks of
// BenchmarkExecutionReuse and derives the acceptance metrics.
func compareReuse(benches []Benchmark) []ReuseComparison {
	type key struct{ workload, workers string }
	pairs := map[key]*ReuseComparison{}
	var order []key
	for i := range benches {
		b := &benches[i]
		cell, ok := parseReuseCell(b.Name)
		if !ok {
			continue
		}
		k := key{cell.workload, strconv.Itoa(cell.workers)}
		c := pairs[k]
		if c == nil {
			c = &ReuseComparison{Workload: k.workload, Workers: k.workers}
			pairs[k] = c
			order = append(order, k)
		}
		switch cell.mode {
		case "pooled":
			c.Pooled = b
		case "noreuse":
			c.NoReuse = b
		}
	}
	var out []ReuseComparison
	for _, k := range order {
		c := pairs[k]
		if c.Pooled == nil || c.NoReuse == nil {
			continue
		}
		if c.NoReuse.ExecsPerSec > 0 {
			c.ExecsPerSecGainPct = 100 * (c.Pooled.ExecsPerSec/c.NoReuse.ExecsPerSec - 1)
		}
		if c.NoReuse.AllocsPerOp > 0 {
			c.AllocsPerOpReductionPct = 100 * (1 - c.Pooled.AllocsPerOp/c.NoReuse.AllocsPerOp)
		}
		out = append(out, *c)
	}
	return out
}
