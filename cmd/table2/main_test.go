package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// table2Binary compiles the command once per test binary via the go
// tool (`go build`, the compile step `go run .` performs) and returns the
// path. Running the artifact directly — rather than through `go run` —
// preserves the CLI's real exit codes, which `go run` collapses to 1.
var table2Binary = struct {
	once sync.Once
	path string
	err  error
}{}

func buildTable2(t *testing.T) string {
	t.Helper()
	b := &table2Binary
	b.once.Do(func() {
		dir, err := os.MkdirTemp("", "table2-cli")
		if err != nil {
			b.err = err
			return
		}
		b.path = filepath.Join(dir, "table2")
		out, err := exec.Command("go", "build", "-o", b.path, ".").CombinedOutput()
		if err != nil {
			b.err = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if b.err != nil {
		t.Fatal(b.err)
	}
	return b.path
}

// runTable2 invokes the compiled CLI and returns combined output plus
// the exit code.
func runTable2(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(buildTable2(t), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("table2 failed to start: %v\n%s", err, out)
	return "", -1
}

// TestCLISmoke drives the compiled binary on a small budget: the table
// renders with the header, the scheduler columns, every Table 2 row
// family, and the portfolio column naming a winning member for the
// quick-surfacing rows.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	out, code := runTable2(t, "-iterations", "100", "-seed", "1", "-portfolio", "random,pct,delay")
	if code != 0 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	for _, want := range []string{
		"Table 2:",
		"random scheduler",
		"priority-based scheduler",
		"portfolio random+pct+delay",
		"ExtentNodeLivenessViolation",
		"DeletePrimaryKey",
		"MigrateSkipPreferOld (c)", // custom rows keep the paper's ◐ marker
		"crashes=1",                // the vNext row shows its declared fault budget
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
	// The vNext liveness bug surfaces in ~1 execution at seed 1, so its
	// row must report a find under every column — including a named
	// portfolio winner rather than the no-bug "-" placeholder.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "ExtentNodeLivenessViolation") {
			if strings.Count(line, "yes") < 3 {
				t.Fatalf("vNext row does not report the bug under all three columns:\n%s", line)
			}
			fields := strings.Fields(line)
			winner := fields[len(fields)-1]
			if winner != "random" && winner != "pct" && winner != "delay" {
				t.Fatalf("portfolio winner %q is not a member:\n%s", winner, line)
			}
		}
	}
}

// TestCLIOmitsPortfolioColumn: an empty -portfolio drops the third
// column, matching the documented flag semantics.
func TestCLIOmitsPortfolioColumn(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	out, code := runTable2(t, "-iterations", "20", "-seed", "1", "-portfolio", "")
	if code != 0 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	// The fixed header sentence still mentions portfolios; the column
	// itself is identified by its "winner" header and member list.
	if strings.Contains(out, "winner") || strings.Contains(out, "portfolio random") {
		t.Fatalf("portfolio column rendered despite -portfolio \"\":\n%s", out)
	}
}

// TestCLIValidatesFlags: a bad portfolio spec fails up front with exit
// code 2 and a pointed message, like the other CLIs.
func TestCLIValidatesFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	out, code := runTable2(t, "-portfolio", "random,quantum")
	if code != 2 {
		t.Fatalf("exit = %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown scheduler") {
		t.Fatalf("error output lacks the unknown-scheduler message:\n%s", out)
	}
	out, code = runTable2(t, "-workers", "-4")
	if code != 2 || !strings.Contains(out, "-workers must be non-negative") {
		t.Fatalf("negative -workers not rejected (exit %d):\n%s", code, out)
	}
}
