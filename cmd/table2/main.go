// Command table2 regenerates the paper's Table 2: for every seeded bug it
// runs the random and the priority-based (PCT) systematic-testing
// schedulers for a bounded number of executions and reports whether the
// bug was found (BF?), the time to the first buggy execution, and the
// number of nondeterministic choices (#NDC) in that execution.
//
// The paper ran 100,000 executions per cell; that remains available via
// -iterations 100000, while the default keeps a full table affordable.
// Rows marked (c) use the custom test case that pins the bug's rare
// triggering inputs, exactly as the paper's ◐ rows did.
package main

import (
	"flag"
	"fmt"

	"github.com/gostorm/gostorm/internal/core"
	"github.com/gostorm/gostorm/internal/mtable"
	mharness "github.com/gostorm/gostorm/internal/mtable/harness"
	vharness "github.com/gostorm/gostorm/internal/vnext/harness"
)

// tableRow is one Table 2 line.
type tableRow struct {
	cs     string
	name   string
	custom bool // run as a custom test case (the paper's ◐ rows)
	star   bool // notional bug (the paper's ∗ rows)
	build  func() core.Test
	// maxSteps bounds each execution (liveness rows need long ones).
	maxSteps int
}

func main() {
	var (
		iterations = flag.Int("iterations", 20000, "execution budget per cell (paper: 100000)")
		seed       = flag.Int64("seed", 1, "base random seed")
		pctDepth   = flag.Int("pct-depth", 2, "priority change points per execution (paper: 2)")
		workers    = flag.Int("workers", 0, "parallel exploration workers per cell (0 = one per CPU)")
	)
	flag.Parse()

	rows := []tableRow{{
		cs:   "1",
		name: "ExtentNodeLivenessViolation",
		build: func() core.Test {
			return vharness.Test(vharness.HarnessConfig{Scenario: vharness.ScenarioFailAndRepair})
		},
		maxSteps: 3000,
	}}
	customOnly := map[string]bool{
		"QueryStreamedFilterShadowing":    true,
		"MigrateSkipPreferOld":            true,
		"MigrateSkipUseNewWithTombstones": true,
		"InsertBehindMigrator":            true,
	}
	notional := map[string]bool{
		"MigrateSkipPreferOld":            true,
		"MigrateSkipUseNewWithTombstones": true,
		"InsertBehindMigrator":            true,
	}
	for _, name := range mtable.AllBugs() {
		bug, _ := mtable.BugByName(name)
		r := tableRow{
			cs:       "2",
			name:     name,
			custom:   customOnly[name],
			star:     notional[name],
			maxSteps: 30000,
		}
		if r.custom {
			r.build = func() core.Test { return mharness.CustomTest(bug) }
		} else {
			r.build = func() core.Test { return mharness.Test(mharness.HarnessConfig{Bugs: bug}) }
		}
		rows = append(rows, r)
	}

	fmt.Printf("Table 2: random and priority-based schedulers, up to %d executions per cell\n", *iterations)
	fmt.Println("(c) = custom test case pinning the triggering inputs; (*) = notional bug")
	fmt.Println()
	fmt.Printf("%-2s %-38s | %-3s %12s %8s | %-3s %12s %8s\n",
		"CS", "Bug Identifier", "BF?", "Time(s)", "#NDC", "BF?", "Time(s)", "#NDC")
	fmt.Printf("%-2s %-38s | %26s | %26s\n", "", "", "random scheduler", "priority-based scheduler")
	for _, r := range rows {
		label := r.name
		if r.star {
			label = "*" + label
		}
		if r.custom {
			label += " (c)"
		}
		randCell := runCell(r, "random", *iterations, *seed, *pctDepth, *workers)
		pctCell := runCell(r, "pct", *iterations, *seed, *pctDepth, *workers)
		fmt.Printf("%-2s %-38s | %s | %s\n", r.cs, label, randCell, pctCell)
	}
}

// runCell runs one (bug, scheduler) cell and formats it. Cells explore in
// parallel; time-to-bug therefore reflects the machine's core count, while
// #NDC stays a property of the (deterministically chosen) buggy execution.
func runCell(r tableRow, scheduler string, iterations int, seed int64, pctDepth, workers int) string {
	res := core.Run(r.build(), core.Options{
		Scheduler:   scheduler,
		PCTDepth:    pctDepth,
		Iterations:  iterations,
		MaxSteps:    r.maxSteps,
		Seed:        seed,
		Workers:     workers,
		NoReplayLog: true,
	})
	if !res.BugFound {
		return fmt.Sprintf("%-3s %12s %8s", "no", "-", "-")
	}
	return fmt.Sprintf("%-3s %12.2f %8d", "yes", res.Elapsed.Seconds(), res.Choices)
}
