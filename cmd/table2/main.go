// Command table2 regenerates the paper's Table 2: for every seeded bug it
// runs the random and the priority-based (PCT) systematic-testing
// schedulers for a bounded number of executions and reports whether the
// bug was found (BF?), the time to the first buggy execution, and the
// number of nondeterministic choices (#NDC) in that execution. A third
// column races a scheduler portfolio (random+pct+delay by default) on the
// same budget and names the member that won — the paper's observation
// that no single strategy finds every bug, made operational.
//
// The paper ran 100,000 executions per cell; that remains available via
// -iterations 100000, while the default keeps a full table affordable.
// Rows marked (c) use the custom test case that pins the bug's rare
// triggering inputs, exactly as the paper's ◐ rows did.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gostorm/gostorm"
	"github.com/gostorm/gostorm/internal/mtable"
	mharness "github.com/gostorm/gostorm/internal/mtable/harness"
	vharness "github.com/gostorm/gostorm/internal/vnext/harness"
)

// tableRow is one Table 2 line.
type tableRow struct {
	cs     string
	name   string
	custom bool // run as a custom test case (the paper's ◐ rows)
	star   bool // notional bug (the paper's ∗ rows)
	build  func() gostorm.Test
	// maxSteps bounds each execution (liveness rows need long ones).
	maxSteps int
}

func main() {
	var (
		iterations = flag.Int("iterations", 20000, "execution budget per cell (paper: 100000); per member for the portfolio column")
		seed       = flag.Int64("seed", 1, "base random seed")
		pctDepth   = flag.Int("pct-depth", 2, "priority change points per execution (paper: 2)")
		workers    = flag.Int("workers", 0, "parallel exploration workers per cell (0 = one per CPU)")
		portfolio  = flag.String("portfolio", "random,pct,delay", "comma-separated members of the portfolio column (empty = omit the column)")
	)
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "table2: -workers must be non-negative, got %d\n", *workers)
		os.Exit(2)
	}

	var members []string
	if *portfolio != "" {
		var err error
		if members, err = gostorm.ParsePortfolioSpec(*portfolio); err != nil {
			fmt.Fprintln(os.Stderr, "table2:", err)
			os.Exit(2)
		}
	}

	rows := []tableRow{{
		cs:   "1",
		name: "ExtentNodeLivenessViolation",
		build: func() gostorm.Test {
			return vharness.Test(vharness.HarnessConfig{Scenario: vharness.ScenarioFailAndRepair})
		},
		maxSteps: 3000,
	}}
	customOnly := map[string]bool{
		"QueryStreamedFilterShadowing":    true,
		"MigrateSkipPreferOld":            true,
		"MigrateSkipUseNewWithTombstones": true,
		"InsertBehindMigrator":            true,
	}
	notional := map[string]bool{
		"MigrateSkipPreferOld":            true,
		"MigrateSkipUseNewWithTombstones": true,
		"InsertBehindMigrator":            true,
	}
	for _, name := range mtable.AllBugs() {
		bug, _ := mtable.BugByName(name)
		r := tableRow{
			cs:       "2",
			name:     name,
			custom:   customOnly[name],
			star:     notional[name],
			maxSteps: 30000,
		}
		if r.custom {
			r.build = func() gostorm.Test { return mharness.CustomTest(bug) }
		} else {
			r.build = func() gostorm.Test { return mharness.Test(mharness.HarnessConfig{Bugs: bug}) }
		}
		rows = append(rows, r)
	}

	fmt.Printf("Table 2: random, priority-based and portfolio schedulers, up to %d executions per cell\n", *iterations)
	fmt.Println("(c) = custom test case pinning the triggering inputs; (*) = notional bug")
	fmt.Println("faults = the scenario's fault-plane budget (crashes/drops/dups per execution; - = none)")
	fmt.Println()
	fmt.Printf("%-2s %-38s %-10s | %-3s %12s %8s | %-3s %12s %8s", "CS", "Bug Identifier", "faults", "BF?", "Time(s)", "#NDC", "BF?", "Time(s)", "#NDC")
	if members != nil {
		fmt.Printf(" | %-3s %12s %8s %-8s", "BF?", "Time(s)", "#NDC", "winner")
	}
	fmt.Println()
	fmt.Printf("%-2s %-38s %-10s | %26s | %26s", "", "", "", "random scheduler", "priority-based scheduler")
	if members != nil {
		fmt.Printf(" | %35s", "portfolio "+strings.Join(members, "+"))
	}
	fmt.Println()
	for _, r := range rows {
		label := r.name
		if r.star {
			label = "*" + label
		}
		if r.custom {
			label += " (c)"
		}
		faults := r.build().Faults.String()
		randCell := runCell(r, "random", *iterations, *seed, *pctDepth, *workers)
		pctCell := runCell(r, "pct", *iterations, *seed, *pctDepth, *workers)
		fmt.Printf("%-2s %-38s %-10s | %s | %s", r.cs, label, faults, randCell, pctCell)
		if members != nil {
			fmt.Printf(" | %s", runPortfolioCell(r, members, *iterations, *seed, *pctDepth, *workers))
		}
		fmt.Println()
	}
}

// cellOptions is the shared option set of one table cell.
func cellOptions(r tableRow, iterations int, seed int64, pctDepth, workers int) []gostorm.Option {
	opts := []gostorm.Option{
		gostorm.WithPCTDepth(pctDepth),
		gostorm.WithIterations(iterations),
		gostorm.WithMaxSteps(r.maxSteps),
		gostorm.WithSeed(seed),
		gostorm.WithNoReplayLog(),
	}
	if workers > 0 {
		opts = append(opts, gostorm.WithWorkers(workers))
	}
	return opts
}

// runCell runs one (bug, scheduler) cell and formats it. Cells explore in
// parallel; time-to-bug therefore reflects the machine's core count, while
// #NDC stays a property of the (deterministically chosen) buggy execution.
func runCell(r tableRow, scheduler string, iterations int, seed int64, pctDepth, workers int) string {
	opts := append(cellOptions(r, iterations, seed, pctDepth, workers), gostorm.WithScheduler(scheduler))
	res, err := gostorm.Explore(r.build(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(2)
	}
	if !res.BugFound {
		return fmt.Sprintf("%-3s %12s %8s", "no", "-", "-")
	}
	return fmt.Sprintf("%-3s %12.2f %8d", "yes", res.Elapsed.Seconds(), res.Choices)
}

// runPortfolioCell races the portfolio on one bug and reports the winning
// member alongside the usual columns.
func runPortfolioCell(r tableRow, members []string, iterations int, seed int64, pctDepth, workers int) string {
	opts := append(cellOptions(r, iterations, seed, pctDepth, workers), gostorm.WithPortfolio(members...))
	res, err := gostorm.Explore(r.build(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(2)
	}
	if !res.BugFound {
		return fmt.Sprintf("%-3s %12s %8s %-8s", "no", "-", "-", "-")
	}
	return fmt.Sprintf("%-3s %12.2f %8d %-8s", "yes", res.Elapsed.Seconds(), res.Choices, res.Portfolio[res.Winner].Scheduler)
}
