// Command gostormd is the distributed exploration coordinator: it owns
// one exploration plan over a registered scenario, serves the control
// plane (lease grants, bug reports, corpus merging, /v1/status, /healthz,
// /metrics) to a fleet of gostorm-agent processes, and exits with the
// run's verdict once the deterministic winner is confirmed.
//
// The coordinator never executes the scenario itself — it only cuts the
// global schedule plan into leases and merges what agents report. For a
// fixed -seed and plan, the winning bug (member, iteration, trace bytes)
// is bit-identical whatever the fleet size or agent churn.
//
// Usage:
//
//	gostormd -test wal-torn-tail -seed 1 -iterations 20000
//	gostormd -test replsys-safety -portfolio random,pct -addr :7077 -trace-out bug.trace
//
// Exit codes: 1 bug found, 0 plan exhausted clean, 2 configuration error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gostorm/gostorm/internal/catalog"
	"github.com/gostorm/gostorm/internal/core"
	"github.com/gostorm/gostorm/internal/dist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gostormd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list        = fs.Bool("list", false, "list registered scenarios and exit")
		test        = fs.String("test", "", "scenario name (see -list)")
		scheduler   = fs.String("scheduler", "", "scheduler (default: scenario recommendation, else random)")
		portfolio   = fs.String("portfolio", "", "comma-separated scheduler portfolio to race instead of -scheduler")
		pctDepth    = fs.Int("pct-depth", 2, "priority change points for the pct/delay schedulers")
		seed        = fs.Int64("seed", 0, "base random seed (determines the plan's winner)")
		iterations  = fs.Int("iterations", 0, "maximum executions (0 = scenario default); per member for a portfolio")
		maxSteps    = fs.Int("max-steps", 0, "scheduling steps per execution (0 = scenario default)")
		corpusSize  = fs.Int("corpus-size", 0, "exploration corpus capacity for feedback schedulers (0 = default)")
		temperature = fs.Int("temperature", 0, "liveness temperature threshold (0 = bound check only)")
		faults      = fs.String("faults", "", "fault budget override, e.g. crashes=1,drops=2 (empty = scenario default)")
		addr        = fs.String("addr", "127.0.0.1:7077", "control-plane listen address (use :0 for an ephemeral port)")
		leaseSize   = fs.Int64("lease", 256, "global positions per lease")
		leaseTTL    = fs.Duration("lease-ttl", 10*time.Second, "lease expiry; an unreported lease is re-issued after this")
		linger      = fs.Duration("linger", 2*time.Second, "how long to keep serving after the verdict so agents learn the run is done")
		traceOut    = fs.String("trace-out", "", "write the winning bug's trace to this file")
		verbose     = fs.Bool("v", false, "log control-plane events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprint(stdout, catalog.Describe())
		return 0
	}
	if *test == "" {
		fmt.Fprintln(stderr, "gostormd: -test is required (use -list to see scenarios)")
		return 2
	}
	if *portfolio != "" && *scheduler != "" {
		fmt.Fprintf(stderr, "gostormd: -portfolio conflicts with -scheduler %s (drop one, or add %s to the member list)\n", *scheduler, *scheduler)
		return 2
	}
	entry, err := catalog.Get(*test)
	if err != nil {
		fmt.Fprintln(stderr, "gostormd:", err)
		return 2
	}

	// Layer CLI overrides on the scenario's recommended options — the same
	// resolution systest performs, minus the machine-local knobs (Workers)
	// that belong to each agent.
	opts := entry.Options
	opts.Seed = *seed
	opts.PCTDepth = *pctDepth
	if *portfolio != "" {
		members, err := core.ParsePortfolioSpec(*portfolio)
		if err != nil {
			fmt.Fprintln(stderr, "gostormd: -portfolio:", err)
			return 2
		}
		opts.Portfolio = members
		opts.Scheduler = ""
	} else if *scheduler != "" {
		opts.Scheduler = *scheduler
		opts.Portfolio = nil
	}
	if *iterations > 0 {
		opts.Iterations = *iterations
	}
	if *maxSteps > 0 {
		opts.MaxSteps = *maxSteps
	}
	if *corpusSize > 0 {
		opts.CorpusSize = *corpusSize
	}
	if *temperature > 0 {
		opts.Temperature = *temperature
	}
	if strings.TrimSpace(*faults) != "" {
		f, err := core.ParseFaultsSpec(*faults)
		if err != nil {
			fmt.Fprintln(stderr, "gostormd: -faults:", err)
			return 2
		}
		opts.Faults = f
	}

	cfg := dist.Config{
		Scenario:  *test,
		Options:   opts,
		LeaseSize: *leaseSize,
		LeaseTTL:  *leaseTTL,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, "gostormd: "+format+"\n", args...)
		}
	}
	co, err := dist.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "gostormd:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "gostormd:", err)
		return 2
	}
	srv := &http.Server{Handler: co.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	plan := co.Plan()
	fmt.Fprintf(stdout, "gostormd: coordinating %s over %d position(s) (%s, seed %d) on http://%s\n",
		plan.Scenario, plan.Total, describePlanSchedulers(plan), plan.Seed, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-co.Done():
	case s := <-sig:
		fmt.Fprintf(stderr, "gostormd: interrupted by %v before the verdict\n", s)
		return 2
	}
	// Keep the control plane up briefly so agents polling for leases learn
	// the run is done instead of dying on a refused connection.
	time.Sleep(*linger)

	res := co.Result()
	if res.Mismatches > 0 {
		fmt.Fprintf(stderr, "gostormd: WARNING: %d determinism violation(s): %s\n", res.Mismatches, res.FirstMismatch)
	}
	if !res.BugFound {
		fmt.Fprintf(stdout, "no bug found in %d executions (%d total steps, %.2fs)\n",
			res.Executions, res.TotalSteps, res.Elapsed.Seconds())
		return 0
	}
	fmt.Fprintf(stdout, "bug found at global position %d (member %d, iteration %d) after %d executions: %s\n",
		res.BugPos, res.Member, res.Iteration, res.Executions, res.Message)
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, res.TraceBytes, 0o644); err != nil {
			fmt.Fprintln(stderr, "gostormd: writing trace:", err)
			return 1
		}
		fmt.Fprintln(stdout, "trace written to", *traceOut)
	}
	return 1
}

func describePlanSchedulers(p dist.PlanConfig) string {
	if len(p.Portfolio) > 0 {
		return "portfolio " + strings.Join(p.Portfolio, "+")
	}
	return p.Scheduler + " scheduler"
}
