package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gostorm/gostorm/internal/catalog"
	"github.com/gostorm/gostorm/internal/core"
)

// distBinaries compiles gostormd and gostorm-agent once per test binary.
// Running the artifacts directly preserves the real exit codes.
var distBinaries = struct {
	once  sync.Once
	dir   string
	coord string
	agent string
	err   error
}{}

func buildBinaries(t *testing.T) (coord, agent string) {
	t.Helper()
	b := &distBinaries
	b.once.Do(func() {
		dir, err := os.MkdirTemp("", "gostormd-cli")
		if err != nil {
			b.err = err
			return
		}
		b.dir = dir
		b.coord = filepath.Join(dir, "gostormd")
		b.agent = filepath.Join(dir, "gostorm-agent")
		if out, err := exec.Command("go", "build", "-o", b.coord, ".").CombinedOutput(); err != nil {
			b.err = fmt.Errorf("go build gostormd: %v\n%s", err, out)
			return
		}
		if out, err := exec.Command("go", "build", "-o", b.agent, "../gostorm-agent").CombinedOutput(); err != nil {
			b.err = fmt.Errorf("go build gostorm-agent: %v\n%s", err, out)
		}
	})
	if b.err != nil {
		t.Fatal(b.err)
	}
	return b.coord, b.agent
}

var listenRE = regexp.MustCompile(`on (http://[^\s]+)`)

// TestDistributedSmoke runs the real control plane end to end: gostormd
// plus two gostorm-agent processes shard a buggy scenario on localhost,
// and the fleet's winner must be byte-identical to a single-process
// Explore of the same plan.
func TestDistributedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binaries")
	}
	coordBin, agentBin := buildBinaries(t)

	// The in-process reference the fleet must reproduce bit-for-bit.
	entry, err := catalog.Get("wal-torn-tail")
	if err != nil {
		t.Fatal(err)
	}
	opts := entry.Options
	opts.Scheduler = "random"
	opts.Seed = 1
	opts.Iterations = 400
	opts.NoReplayLog = true
	ref := core.MustExplore(entry.Build(), opts)
	if !ref.BugFound {
		t.Fatal("reference run found no bug")
	}
	wantTrace, err := ref.Report.Trace.Encode()
	if err != nil {
		t.Fatal(err)
	}

	trace := filepath.Join(t.TempDir(), "winner.trace")
	coord := exec.Command(coordBin,
		"-test", "wal-torn-tail", "-scheduler", "random",
		"-seed", "1", "-iterations", "400",
		"-addr", "127.0.0.1:0", "-lease", "8", "-linger", "3s",
		"-trace-out", trace)
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord.Stderr = coord.Stdout
	if err := coord.Start(); err != nil {
		t.Fatalf("starting gostormd: %v", err)
	}
	defer coord.Process.Kill()

	// The banner carries the ephemeral address.
	var coordOut bytes.Buffer
	sc := bufio.NewScanner(stdout)
	var url string
	for sc.Scan() {
		line := sc.Text()
		coordOut.WriteString(line + "\n")
		if m := listenRE.FindStringSubmatch(line); m != nil {
			url = m[1]
			break
		}
	}
	if url == "" {
		t.Fatalf("gostormd printed no listen address:\n%s", coordOut.String())
	}
	// Keep draining so the pipe never blocks the coordinator.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			coordOut.WriteString(sc.Text() + "\n")
		}
	}()

	agents := make([]*exec.Cmd, 2)
	agentOut := make([]bytes.Buffer, 2)
	for i := range agents {
		agents[i] = exec.Command(agentBin,
			"-coordinator", url, "-name", fmt.Sprintf("smoke-%d", i), "-workers", "2")
		agents[i].Stdout = &agentOut[i]
		agents[i].Stderr = &agentOut[i]
		if err := agents[i].Start(); err != nil {
			t.Fatalf("starting agent %d: %v", i, err)
		}
	}

	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait() }()
	select {
	case err := <-coordErr:
		<-drained
		if code := exitCode(err); code != 1 {
			t.Fatalf("gostormd exit = %d, want 1 (bug found):\n%s", code, coordOut.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("gostormd did not finish:\n%s", coordOut.String())
	}
	for i, a := range agents {
		if err := a.Wait(); err != nil {
			t.Errorf("agent %d exit: %v\n%s", i, err, agentOut[i].String())
		}
	}

	out := coordOut.String()
	if !strings.Contains(out, fmt.Sprintf("iteration %d", ref.Report.Iteration)) {
		t.Fatalf("gostormd attribution does not match reference iteration %d:\n%s", ref.Report.Iteration, out)
	}
	if !strings.Contains(out, "trace written to") {
		t.Fatalf("gostormd did not write the trace:\n%s", out)
	}
	got, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("reading winner trace: %v", err)
	}
	if !bytes.Equal(got, wantTrace) {
		t.Fatalf("fleet trace diverges from single-process run:\n got %s\nwant %s", got, wantTrace)
	}
}

// TestCoordinatorConfigErrors: flag and plan validation fails fast with
// exit 2 before any control plane comes up.
func TestCoordinatorConfigErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	coordBin, agentBin := buildBinaries(t)
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"missing test", nil, "-test is required"},
		{"unknown scenario", []string{"-test", "nope"}, "unknown scenario"},
		{"sequential scheduler", []string{"-test", "wal-torn-tail", "-scheduler", "dfs"}, "cannot be sharded"},
		{"conflicting flags", []string{"-test", "wal-torn-tail", "-scheduler", "pct", "-portfolio", "random,pct"}, "-portfolio conflicts"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(coordBin, tc.args...).CombinedOutput()
			if code := exitCode(err); code != 2 {
				t.Fatalf("exit = %d, want 2:\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("output %q does not mention %q", out, tc.want)
			}
		})
	}
	// The agent validates its flags the same way.
	out, err := exec.Command(agentBin, "-coordinator", "").CombinedOutput()
	if code := exitCode(err); code != 2 {
		t.Fatalf("agent exit = %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(string(out), "Coordinator is required") {
		t.Fatalf("agent output %q lacks the config error", out)
	}
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}
