// Extent repair: reproduce the §3.6 Azure Storage vNext liveness bug —
// a sync report from an already-expired extent node resurrects its replica
// records, so the extent repair loop never repairs the lost replica — and
// verify the fix survives the same exploration.
//
// The example imports only the public gostorm package; the shipped
// (buggy) manager is the "ExtentNodeLivenessViolation" scenario and the
// fixed one is "vnext-repair".
//
// Run with: go run ./examples/extentrepair
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/gostorm/gostorm"
)

func main() {
	fmt.Println("== Scenario 2 (§3.4): fail one extent node, launch a fresh one, await repair ==")
	fmt.Println()

	fmt.Println("-- shipped manager (stale sync reports accepted) --")
	res := explore("ExtentNodeLivenessViolation",
		gostorm.WithIterations(20000), gostorm.WithSeed(1))
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nmanager traffic on the buggy schedule (sync reports and expirations):")
		shown := 0
		for _, line := range res.Report.Log {
			if strings.Contains(line, "SyncReport") || strings.Contains(line, "TickExpiration") {
				fmt.Println(" ", line)
				shown++
				if shown >= 12 {
					break
				}
			}
		}
	}

	fmt.Println("\n-- fixed manager (sync reports from unknown nodes discarded) --")
	res = explore("vnext-repair", gostorm.WithIterations(200), gostorm.WithSeed(1))
	fmt.Println(res)
}

// explore runs a named scenario with overrides layered over its
// recommended options.
func explore(name string, opts ...gostorm.Option) gostorm.Result {
	sc, err := gostorm.ScenarioByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := gostorm.Explore(sc.Test(), append(sc.Options(), opts...)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
