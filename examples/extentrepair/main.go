// Extent repair: reproduce the §3.6 Azure Storage vNext liveness bug —
// a sync report from an already-expired extent node resurrects its replica
// records, so the extent repair loop never repairs the lost replica — and
// verify the fix survives the same exploration.
//
// Run with: go run ./examples/extentrepair
package main

import (
	"fmt"
	"strings"

	"github.com/gostorm/gostorm/internal/core"
	"github.com/gostorm/gostorm/internal/vnext"
	"github.com/gostorm/gostorm/internal/vnext/harness"
)

func main() {
	fmt.Println("== Scenario 2 (§3.4): fail one extent node, launch a fresh one, await repair ==")
	fmt.Println()

	buggy := harness.Test(harness.HarnessConfig{Scenario: harness.ScenarioFailAndRepair})
	fmt.Println("-- shipped manager (stale sync reports accepted) --")
	res := core.Run(buggy, core.Options{Scheduler: "random", Iterations: 20000, MaxSteps: 3000, Seed: 1})
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nmanager traffic on the buggy schedule (sync reports and expirations):")
		shown := 0
		for _, line := range res.Report.Log {
			if strings.Contains(line, "SyncReport") || strings.Contains(line, "TickExpiration") {
				fmt.Println(" ", line)
				shown++
				if shown >= 12 {
					break
				}
			}
		}
	}

	fmt.Println("\n-- fixed manager (sync reports from unknown nodes discarded) --")
	fixed := harness.Test(harness.HarnessConfig{
		Scenario: harness.ScenarioFailAndRepair,
		Manager:  vnext.Config{IgnoreSyncFromUnknownNodes: true},
	})
	res = core.Run(fixed, core.Options{Scheduler: "random", Iterations: 200, MaxSteps: 5000, Seed: 1})
	fmt.Println(res)
}
