// Quickstart: systematically test the paper's §2 example — a client
// replicating data through a server onto three storage nodes — and find
// both seeded bugs: a safety violation (the server acknowledges before
// three distinct replicas exist) and a liveness violation (the server
// never acknowledges a second request).
//
// The example imports only the public gostorm package: scenarios are
// built by name, runs are configured with functional options layered
// over each scenario's recommendations, and every bug comes back with a
// trace that gostorm.Replay reproduces exactly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"github.com/gostorm/gostorm"
)

func main() {
	fmt.Println("== 1. Safety bug: duplicate sync reports counted as distinct replicas ==")
	safety := scenario("replsys-safety")
	res := explore(safety, gostorm.WithIterations(10000), gostorm.WithSeed(1))
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nlast lines of the replayed execution:")
		tail(res.Report.Log, 8)
	}

	fmt.Println("\n== 2. Liveness bug: replica counter never reset, client blocks forever ==")
	res = explore(scenario("replsys-liveness"), gostorm.WithSeed(1))
	fmt.Println(res)

	fmt.Println("\n== 3. Both fixes applied: exploration finds nothing ==")
	res = explore(scenario("replsys-fixed"), gostorm.WithSeed(1))
	fmt.Println(res)

	fmt.Println("\n== 4. Reproducing the safety bug exactly, from its trace ==")
	res = explore(safety, gostorm.WithIterations(10000), gostorm.WithSeed(1), gostorm.WithNoReplayLog())
	if res.BugFound {
		rep, err := gostorm.Replay(safety.Test(), res.Report.Trace,
			append(safety.Options(), gostorm.WithSeed(1))...)
		if err != nil {
			fmt.Println("replay failed:", err)
			return
		}
		fmt.Printf("replay reproduced the identical violation: %v\n", rep.Error())
	}
}

// scenario resolves a catalog scenario by name, exiting on a typo.
func scenario(name string) gostorm.Scenario {
	sc, err := gostorm.ScenarioByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return sc
}

// explore layers the given options over the scenario's recommendations
// and runs it.
func explore(sc gostorm.Scenario, opts ...gostorm.Option) gostorm.Result {
	res, err := gostorm.Explore(sc.Test(), append(sc.Options(), opts...)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

func tail(lines []string, n int) {
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	for _, l := range lines {
		fmt.Println(" ", l)
	}
}
