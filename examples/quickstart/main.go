// Quickstart: systematically test the paper's §2 example — a client
// replicating data through a server onto three storage nodes — and find
// both seeded bugs: a safety violation (the server acknowledges before
// three distinct replicas exist) and a liveness violation (the server
// never acknowledges a second request).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/gostorm/gostorm/internal/core"
	"github.com/gostorm/gostorm/internal/replsys"
)

func main() {
	fmt.Println("== 1. Safety bug: duplicate sync reports counted as distinct replicas ==")
	safety := replsys.Scenario(replsys.ScenarioConfig{Monitors: replsys.WithSafety})
	res := core.Run(safety, core.Options{Scheduler: "random", Iterations: 10000, MaxSteps: 2000, Seed: 1})
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nlast lines of the replayed execution:")
		tail(res.Report.Log, 8)
	}

	fmt.Println("\n== 2. Liveness bug: replica counter never reset, client blocks forever ==")
	liveness := replsys.Scenario(replsys.ScenarioConfig{Monitors: replsys.WithLiveness})
	res = core.Run(liveness, core.Options{Scheduler: "random", Iterations: 100, MaxSteps: 3000, Seed: 1})
	fmt.Println(res)

	fmt.Println("\n== 3. Both fixes applied: exploration finds nothing ==")
	fixed := replsys.Scenario(replsys.ScenarioConfig{
		Server: replsys.Config{FixUniqueReplicas: true, FixCounterReset: true},
	})
	res = core.Run(fixed, core.Options{Scheduler: "random", Iterations: 100, MaxSteps: 8000, Seed: 1})
	fmt.Println(res)

	fmt.Println("\n== 4. Reproducing the safety bug exactly, from its trace ==")
	res = core.Run(safety, core.Options{Scheduler: "random", Iterations: 10000, MaxSteps: 2000, Seed: 1, NoReplayLog: true})
	if res.BugFound {
		rep, err := core.Replay(safety, res.Report.Trace, core.Options{
			Scheduler: "random", Iterations: 10000, MaxSteps: 2000, Seed: 1,
		})
		if err != nil {
			fmt.Println("replay failed:", err)
			return
		}
		fmt.Printf("replay reproduced the identical violation: %v\n", rep.Error())
	}
}

func tail(lines []string, n int) {
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	for _, l := range lines {
		fmt.Println(" ", l)
	}
}
