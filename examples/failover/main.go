// Failover: run the replicated counter service on the fabric model (§5),
// reproduce the promotion assertion failure when the primary dies while a
// state copy is in flight, and crash the CScale-analog pipeline with the
// data-races-open NullReferenceException analog.
//
// The example imports only the public gostorm package; the fixed and
// buggy variants are the "fabric-failover" / "fabric-promotion-bug" and
// "fabric-pipeline" / "fabric-pipeline-crash" scenarios.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/gostorm/gostorm"
)

func main() {
	fmt.Println("== Counter service on the fabric replica-management model ==")
	fmt.Println()

	fmt.Println("-- fixed model: primary fails at a nondeterministic point, no violation --")
	res := explore("fabric-failover", gostorm.WithIterations(200), gostorm.WithSeed(1))
	fmt.Println(res)

	fmt.Println("\n-- §5 bug: promotion without a role check --")
	res = explore("fabric-promotion-bug", gostorm.WithIterations(20000), gostorm.WithSeed(1))
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nthe catch-up/election race on the buggy schedule:")
		shown := 0
		for _, line := range res.Report.Log {
			if strings.Contains(line, "CaughtUp") || strings.Contains(line, "BecomePrimary") ||
				strings.Contains(line, "ReplicaFailed") || strings.Contains(line, "violation") {
				fmt.Println(" ", line)
				shown++
				if shown >= 10 {
					break
				}
			}
		}
	}

	fmt.Println("\n== CScale-analog pipeline ==")
	fmt.Println("\n-- fixed pipeline --")
	res = explore("fabric-pipeline", gostorm.WithIterations(200), gostorm.WithSeed(1))
	fmt.Println(res)

	fmt.Println("\n-- nil-state crash: a data record outruns the Open control message --")
	res = explore("fabric-pipeline-crash", gostorm.WithIterations(5000), gostorm.WithSeed(1))
	fmt.Println(res)
}

// explore runs a named scenario with overrides layered over its
// recommended options.
func explore(name string, opts ...gostorm.Option) gostorm.Result {
	sc, err := gostorm.ScenarioByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := gostorm.Explore(sc.Test(), append(sc.Options(), opts...)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
