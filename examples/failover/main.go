// Failover: run the replicated counter service on the fabric model (§5),
// reproduce the promotion assertion failure when the primary dies while a
// state copy is in flight, and crash the CScale-analog pipeline with the
// data-races-open NullReferenceException analog.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"strings"

	"github.com/gostorm/gostorm/internal/core"
	"github.com/gostorm/gostorm/internal/fabric"
)

func main() {
	fmt.Println("== Counter service on the fabric replica-management model ==")
	fmt.Println()

	fmt.Println("-- fixed model: primary fails at a nondeterministic point, no violation --")
	fixed := fabric.FailoverScenario(fabric.FailoverConfig{FailPrimary: true})
	res := core.Run(fixed, core.Options{Scheduler: "random", Iterations: 200, MaxSteps: 20000, Seed: 1})
	fmt.Println(res)

	fmt.Println("\n-- §5 bug: promotion without a role check --")
	buggy := fabric.FailoverScenario(fabric.FailoverConfig{
		Fabric:      fabric.Config{BugUncheckedPromotion: true},
		FailPrimary: true,
	})
	res = core.Run(buggy, core.Options{Scheduler: "random", Iterations: 20000, MaxSteps: 20000, Seed: 1})
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nthe catch-up/election race on the buggy schedule:")
		shown := 0
		for _, line := range res.Report.Log {
			if strings.Contains(line, "CaughtUp") || strings.Contains(line, "BecomePrimary") ||
				strings.Contains(line, "ReplicaFailed") || strings.Contains(line, "violation") {
				fmt.Println(" ", line)
				shown++
				if shown >= 10 {
					break
				}
			}
		}
	}

	fmt.Println("\n== CScale-analog pipeline ==")
	fmt.Println("\n-- fixed pipeline --")
	res = core.Run(fabric.PipelineScenario(fabric.PipelineConfig{}), core.Options{
		Scheduler: "random", Iterations: 200, MaxSteps: 5000, Seed: 1,
	})
	fmt.Println(res)

	fmt.Println("\n-- nil-state crash: a data record outruns the Open control message --")
	res = core.Run(fabric.PipelineScenario(fabric.PipelineConfig{BugNilState: true}), core.Options{
		Scheduler: "random", Iterations: 5000, MaxSteps: 5000, Seed: 1,
	})
	fmt.Println(res)
}
