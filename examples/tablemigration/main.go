// Table migration: check the MigratingTable virtual table (§4) against its
// reference-table specification while concurrent services and the migrator
// race, then re-introduce one Table 2 bug and watch the spec check catch
// it.
//
// The example imports only the public gostorm package; every Table 2 bug
// is a catalog scenario under its own name ("DeletePrimaryKey", ...),
// with a "-custom" variant pinning the paper's custom triggering inputs.
//
// Run with: go run ./examples/tablemigration
package main

import (
	"fmt"
	"os"

	"github.com/gostorm/gostorm"
)

func main() {
	fmt.Println("== MigratingTable specification check (Figure 12 environment) ==")
	fmt.Println()

	fmt.Println("-- fixed system: concurrent services + migrator, outputs compared at linearization points --")
	res := explore("mtable", gostorm.WithIterations(150), gostorm.WithSeed(1))
	fmt.Println(res)

	fmt.Println("\n-- DeletePrimaryKey re-introduced: tombstone written under a corrupted key --")
	res = explore("DeletePrimaryKey", gostorm.WithIterations(20000), gostorm.WithSeed(1))
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nviolation:", res.Report.Message)
	}

	fmt.Println("\n-- QueryStreamedBackUpNewStream re-introduced: merged stream trusts stale pages --")
	res = explore("QueryStreamedBackUpNewStream",
		gostorm.WithScheduler("pct"), gostorm.WithIterations(20000), gostorm.WithSeed(1))
	fmt.Println(res)

	fmt.Println("\n-- MigrateSkipPreferOld (notional, custom test case pinning the inputs) --")
	res = explore("MigrateSkipPreferOld-custom",
		gostorm.WithScheduler("pct"), gostorm.WithIterations(20000), gostorm.WithSeed(1))
	fmt.Println(res)
}

// explore runs a named scenario with overrides layered over its
// recommended options.
func explore(name string, opts ...gostorm.Option) gostorm.Result {
	sc, err := gostorm.ScenarioByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := gostorm.Explore(sc.Test(), append(sc.Options(), opts...)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
