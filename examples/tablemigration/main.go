// Table migration: check the MigratingTable virtual table (§4) against its
// reference-table specification while concurrent services and the migrator
// race, then re-introduce one Table 2 bug and watch the spec check catch
// it.
//
// Run with: go run ./examples/tablemigration
package main

import (
	"fmt"

	"github.com/gostorm/gostorm/internal/core"
	"github.com/gostorm/gostorm/internal/mtable"
	"github.com/gostorm/gostorm/internal/mtable/harness"
)

func main() {
	fmt.Println("== MigratingTable specification check (Figure 12 environment) ==")
	fmt.Println()

	fmt.Println("-- fixed system: concurrent services + migrator, outputs compared at linearization points --")
	fixed := harness.Test(harness.HarnessConfig{})
	res := core.Run(fixed, core.Options{Scheduler: "random", Iterations: 150, MaxSteps: 30000, Seed: 1})
	fmt.Println(res)

	fmt.Println("\n-- DeletePrimaryKey re-introduced: tombstone written under a corrupted key --")
	bug, _ := mtable.BugByName("DeletePrimaryKey")
	buggy := harness.Test(harness.HarnessConfig{Bugs: bug})
	res = core.Run(buggy, core.Options{Scheduler: "random", Iterations: 20000, MaxSteps: 30000, Seed: 1})
	fmt.Println(res)
	if res.BugFound {
		fmt.Println("\nviolation:", res.Report.Message)
	}

	fmt.Println("\n-- QueryStreamedBackUpNewStream re-introduced: merged stream trusts stale pages --")
	bug, _ = mtable.BugByName("QueryStreamedBackUpNewStream")
	buggy = harness.Test(harness.HarnessConfig{Bugs: bug})
	res = core.Run(buggy, core.Options{Scheduler: "pct", Iterations: 20000, MaxSteps: 30000, Seed: 1})
	fmt.Println(res)

	fmt.Println("\n-- MigrateSkipPreferOld (notional, custom test case pinning the inputs) --")
	bug, _ = mtable.BugByName("MigrateSkipPreferOld")
	res = core.Run(harness.CustomTest(bug), core.Options{Scheduler: "pct", Iterations: 20000, MaxSteps: 30000, Seed: 1})
	fmt.Println(res)
}
