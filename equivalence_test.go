package gostorm_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/gostorm/gostorm"
	"github.com/gostorm/gostorm/internal/replsys"
	vharness "github.com/gostorm/gostorm/internal/vnext/harness"
)

// This file is the API-redesign equivalence contract: gostorm.Explore —
// the public single entry point with functional options — must produce
// bit-identical results, traces and statistics to the pre-redesign
// engine entry points it subsumed (core.Run and core.RunPortfolio).
//
// The reference side is not computed by calling legacy code (which by
// now shares the new implementation); it is the committed golden
// fixtures under testdata/equivalence/, recorded by running the actual
// pre-redesign tree (commit 78c2b35, PR 4) on fixed-seed seeded-bug
// workloads — including the adaptive calibration path and the fault
// plane — after verifying the legacy engine's own worker-count
// invariance on each. Explore must reproduce every fixture, at one
// worker and at several, down to the encoded trace bytes.

// equivalenceFixture mirrors the JSON written by the pre-redesign
// fixture generator.
type equivalenceFixture struct {
	Name       string   `json:"name"`
	Scheduler  string   `json:"scheduler"`
	Portfolio  []string `json:"portfolio"`
	Seed       int64    `json:"seed"`
	Iterations int      `json:"iterations"`
	MaxSteps   int      `json:"maxSteps"`
	BugFound   bool     `json:"bugFound"`
	Executions int      `json:"executions"`
	TotalSteps int64    `json:"totalSteps"`
	Choices    int      `json:"choices"`
	Exhausted  bool     `json:"exhausted"`
	Winner     int      `json:"winner"`
	Iteration  int      `json:"iteration"`
	Kind       string   `json:"kind"`
	Step       int      `json:"step"`
	Machine    string   `json:"machine"`
	Message    string   `json:"message"`
	Members    []struct {
		Scheduler  string `json:"scheduler"`
		Workers    int    `json:"workers"`
		Executions int    `json:"executions"`
		TotalSteps int64  `json:"totalSteps"`
		Winner     bool   `json:"winner"`
		Exhausted  bool   `json:"exhausted"`
	} `json:"members"`
	Trace json.RawMessage `json:"trace"`
}

func loadFixture(t *testing.T, name string) equivalenceFixture {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "equivalence", name+".json"))
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate from the pre-redesign tree): %v", err)
	}
	var f equivalenceFixture
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	return f
}

// fixtureBuilds maps fixture names to their test builders; the workloads
// must match what the pre-redesign generator ran.
var fixtureBuilds = map[string]func() gostorm.Test{
	"replsys-safety-random": func() gostorm.Test {
		return replsys.Scenario(replsys.ScenarioConfig{Monitors: replsys.WithSafety})
	},
	"replsys-safety-portfolio": func() gostorm.Test {
		return replsys.Scenario(replsys.ScenarioConfig{Monitors: replsys.WithSafety})
	},
	"vnext-liveness-pct": func() gostorm.Test {
		return vharness.Test(vharness.HarnessConfig{Scenario: vharness.ScenarioFailAndRepair})
	},
	"replsys-fixed-random": func() gostorm.Test {
		return replsys.Scenario(replsys.ScenarioConfig{
			Server: replsys.Config{FixUniqueReplicas: true, FixCounterReset: true},
		})
	},
}

// assertMatchesFixture runs Explore with the fixture's configuration at
// the given worker count and demands bit-identical output.
func assertMatchesFixture(t *testing.T, f equivalenceFixture, workers int) {
	t.Helper()
	build, ok := fixtureBuilds[f.Name]
	if !ok {
		t.Fatalf("no builder for fixture %q", f.Name)
	}
	opts := []gostorm.Option{
		gostorm.WithSeed(f.Seed),
		gostorm.WithIterations(f.Iterations),
		gostorm.WithMaxSteps(f.MaxSteps),
		gostorm.WithWorkers(workers),
		gostorm.WithNoReplayLog(),
	}
	if len(f.Portfolio) > 0 {
		opts = append(opts, gostorm.WithPortfolio(f.Portfolio...))
	} else {
		opts = append(opts, gostorm.WithScheduler(f.Scheduler))
	}
	res, err := gostorm.Explore(build(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.BugFound != f.BugFound {
		t.Fatalf("%s/workers=%d: BugFound = %v, fixture %v", f.Name, workers, res.BugFound, f.BugFound)
	}
	if res.Executions != f.Executions || res.TotalSteps != f.TotalSteps || res.Choices != f.Choices {
		t.Fatalf("%s/workers=%d: statistics diverge from the pre-redesign engine:\nexplore: execs=%d steps=%d choices=%d\nfixture: execs=%d steps=%d choices=%d",
			f.Name, workers, res.Executions, res.TotalSteps, res.Choices, f.Executions, f.TotalSteps, f.Choices)
	}
	if res.Exhausted != f.Exhausted || res.Winner != f.Winner {
		t.Fatalf("%s/workers=%d: Exhausted/Winner = %v/%d, fixture %v/%d",
			f.Name, workers, res.Exhausted, res.Winner, f.Exhausted, f.Winner)
	}
	if len(res.Portfolio) != len(f.Members) {
		t.Fatalf("%s/workers=%d: %d member stats, fixture %d", f.Name, workers, len(res.Portfolio), len(f.Members))
	}
	for m, ms := range res.Portfolio {
		fm := f.Members[m]
		// Worker split depends on the requested worker budget, so it is
		// only compared at the fixture's own budget (handled below); the
		// canonical fields must match at every worker count.
		if ms.Scheduler != fm.Scheduler || ms.Executions != fm.Executions ||
			ms.TotalSteps != fm.TotalSteps || ms.Winner != fm.Winner || ms.Exhausted != fm.Exhausted {
			t.Fatalf("%s/workers=%d: member %d diverges:\nexplore: %+v\nfixture: %+v", f.Name, workers, m, ms, fm)
		}
	}
	if !f.BugFound {
		return
	}
	if res.Report.Iteration != f.Iteration || res.Report.Kind.String() != f.Kind ||
		res.Report.Step != f.Step || res.Report.Machine != f.Machine || res.Report.Message != f.Message {
		t.Fatalf("%s/workers=%d: bug report diverges:\nexplore: iter=%d kind=%s step=%d machine=%q msg=%q\nfixture: iter=%d kind=%s step=%d machine=%q msg=%q",
			f.Name, workers,
			res.Report.Iteration, res.Report.Kind, res.Report.Step, res.Report.Machine, res.Report.Message,
			f.Iteration, f.Kind, f.Step, f.Machine, f.Message)
	}
	enc, err := res.Report.Trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's trace was re-indented when embedded in the fixture
	// document; decode and re-encode it so both sides go through the
	// identical canonical encoder before the byte comparison.
	ftr, err := gostorm.DecodeTrace(f.Trace)
	if err != nil {
		t.Fatalf("%s: fixture trace does not decode: %v", f.Name, err)
	}
	fenc, err := ftr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, fenc) {
		t.Fatalf("%s/workers=%d: encoded trace differs from the pre-redesign trace", f.Name, workers)
	}
}

// TestExploreMatchesPreRedesignEngine sweeps every golden fixture across
// worker counts: the public entry point must reproduce the pre-redesign
// engine bit for bit, whatever the parallelism.
func TestExploreMatchesPreRedesignEngine(t *testing.T) {
	for _, name := range []string{
		"replsys-safety-random",
		"vnext-liveness-pct",
		"replsys-safety-portfolio",
		"replsys-fixed-random",
	} {
		f := loadFixture(t, name)
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				assertMatchesFixture(t, f, workers)
			}
		})
	}
}

// TestExploreReplaysPreRedesignTrace: a trace recorded by the
// pre-redesign engine replays through the public API to the identical
// violation — the compatibility half of the replay-debugging loop.
func TestExploreReplaysPreRedesignTrace(t *testing.T) {
	f := loadFixture(t, "replsys-safety-random")
	tr, err := gostorm.DecodeTrace(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gostorm.Replay(fixtureBuilds[f.Name](), tr, gostorm.WithMaxSteps(f.MaxSteps))
	if err != nil {
		t.Fatalf("pre-redesign trace did not replay: %v", err)
	}
	if rep == nil {
		t.Fatal("replay completed cleanly; fixture recorded a violation")
	}
	if rep.Message != f.Message {
		t.Fatalf("replay reproduced %q, fixture recorded %q", rep.Message, f.Message)
	}
}

// TestReplayNilTrace: a nil trace (a DecodeTrace error ignored) is a
// typed configuration error, not a panic.
func TestReplayNilTrace(t *testing.T) {
	_, err := gostorm.Replay(fixtureBuilds["replsys-safety-random"](), nil)
	ce, ok := err.(*gostorm.ConfigError)
	if !ok {
		t.Fatalf("Replay(nil trace) error = %v (%T), want *gostorm.ConfigError", err, err)
	}
	if ce.Field != "Trace" {
		t.Fatalf("ConfigError.Field = %q, want \"Trace\"", ce.Field)
	}
}
