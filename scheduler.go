package gostorm

import "github.com/gostorm/gostorm/internal/core"

// RegisterScheduler adds a user-defined exploration strategy under name,
// making it a first-class citizen of the engine: valid for WithScheduler,
// eligible as a WithPortfolio member (with its own deterministic member
// seeding), covered by the scheduler conformance matrix (VerifyScheduler
// and the repository's conformance tests iterate the registry), and —
// when spec.Adaptive is set and the scheduler implements LengthHinted —
// calibrated by the engine's shared program-length estimate exactly like
// the built-in pct and delay schedulers.
//
// A registered Scheduler must be a deterministic function of its Prepare
// seed and the call sequence — exact replay, and with it bug
// reproduction, depends on it. Implement FaultScheduler as well to
// resolve fault choice points with strategy (otherwise they are answered
// uniformly through the scheduler's NextInt stream). Run VerifyScheduler
// after registering to hold the implementation to the contract.
//
// Registration is typically done from an init function or at the top of
// a test. The name must be non-empty, must not contain commas or
// whitespace, must not be "portfolio", and must not already be
// registered.
func RegisterScheduler(name string, spec SchedulerSpec) error {
	return core.RegisterScheduler(name, spec)
}

// SchedulerNames returns every registered scheduler name, sorted — the
// valid values for WithScheduler and WithPortfolio.
func SchedulerNames() []string { return core.SchedulerNames() }

// VerifyScheduler holds the named registered scheduler to the conformance
// contract the engine's determinism guarantees rest on, returning the
// first violation found (nil when the scheduler conforms): decisions stay
// in range, two fresh instances make identical decisions for the same
// seed, and re-preparing an instance fully reseeds it. Registered
// user-defined schedulers should pass it before being trusted in
// portfolios — the same checks back the repository's cross-scheduler
// conformance matrix.
func VerifyScheduler(name string) error {
	return core.VerifySchedulerConformance(name, 0)
}
